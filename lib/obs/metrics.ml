(* The live-telemetry registry (DESIGN.md §2.15): typed counter / gauge /
   histogram instruments with static label sets, exposed on demand as
   OpenMetrics text, Sink JSON, or a flat (name, int) assoc for the binary
   STATS_FULL opcode.

   Hot-path writes follow the Counters contract: each writer owns one
   cache-line-padded cell (plain stores, no RMW), and the scrape side sums
   cells racily. A scrape therefore never blocks a worker and never runs
   inside any SMR critical section — it may under-count in-flight updates
   by one, which the monotone watermark in [counter_value] papers over
   across scrapes. *)

type labels = (string * string) list

(* One padded slot per writer: stride 16 words keeps adjacent cells on
   distinct cache lines (Counters uses the same layout). *)
let stride = 16

type counter = { c_cells : int array; mutable c_watermark : int }

type histogram = {
  h_cells : Histogram.t array;
  h_le : int array;  (* sample-unit bucket bounds, strictly increasing *)
  h_scale : float;   (* sample unit -> exposition unit (e.g. 1e-9 ns->s) *)
}

type instr =
  | C of counter
  | C_fn of (unit -> int)
  | G_fn of (unit -> float)
  | H of histogram

type kind = Counter | Gauge | Hist

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Hist -> "histogram"

type series = { s_labels : labels; s_instr : instr }

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  mutable f_series : series list;  (* newest first *)
}

type t = { mutable families : family list (* newest first *) }

let create () = { families = [] }

(* ---------- registration ---------- *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_metric_name s =
  s <> "" && is_name_start s.[0] && String.for_all is_name_char s

let valid_label_name s =
  s <> ""
  && s.[0] <> ':'
  && is_name_start s.[0]
  && String.for_all (fun c -> c <> ':' && is_name_char c) s

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let register t ~name ~help ~kind ~labels instr =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S" k))
    labels;
  let labels = normalize_labels labels in
  let series = { s_labels = labels; s_instr = instr } in
  (match List.find_opt (fun f -> f.f_name = name) t.families with
  | Some f ->
      if f.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s registered as both %s and %s" name
             (kind_name f.f_kind) (kind_name kind));
      if List.exists (fun s -> s.s_labels = labels) f.f_series then
        invalid_arg
          (Printf.sprintf "Metrics: duplicate series for %s" name);
      f.f_series <- series :: f.f_series
  | None ->
      t.families <-
        { f_name = name; f_help = help; f_kind = kind; f_series = [ series ] }
        :: t.families)

let counter t ?(help = "") ?(labels = []) ~cells name =
  if cells < 1 then invalid_arg "Metrics.counter: cells < 1";
  let c = { c_cells = Array.make (cells * stride) 0; c_watermark = 0 } in
  register t ~name ~help ~kind:Counter ~labels (C c);
  c

let counter_fn t ?(help = "") ?(labels = []) name fn =
  register t ~name ~help ~kind:Counter ~labels (C_fn fn)

let gauge t ?(help = "") ?(labels = []) name fn =
  register t ~name ~help ~kind:Gauge ~labels (G_fn fn)

(* Default latency ladder in nanoseconds: 1 us .. 1 s, 1-2-5 steps. *)
let default_le =
  [
    1_000; 2_000; 5_000; 10_000; 20_000; 50_000; 100_000; 200_000; 500_000;
    1_000_000; 2_000_000; 5_000_000; 10_000_000; 20_000_000; 50_000_000;
    100_000_000; 1_000_000_000;
  ]

let histogram t ?(help = "") ?(labels = []) ?(le = default_le) ?(scale = 1.0)
    ~cells name =
  if cells < 1 then invalid_arg "Metrics.histogram: cells < 1";
  if le = [] then invalid_arg "Metrics.histogram: empty le ladder";
  let rec sorted = function
    | a :: (b :: _ as tl) -> a < b && sorted tl
    | _ -> true
  in
  if List.exists (fun b -> b < 0) le || not (sorted le) then
    invalid_arg "Metrics.histogram: le ladder must be non-negative ascending";
  let h =
    {
      h_cells = Array.init cells (fun _ -> Histogram.create ());
      h_le = Array.of_list le;
      h_scale = scale;
    }
  in
  register t ~name ~help ~kind:Hist ~labels (H h);
  h

(* ---------- hot-path writes ---------- *)

let add c ~cell n =
  if n < 0 then invalid_arg "Metrics.add: negative increment";
  let i = cell * stride in
  c.c_cells.(i) <- c.c_cells.(i) + n

let incr c ~cell = add c ~cell 1

let observe h ~cell v = Histogram.record h.h_cells.(cell) v

(* ---------- scrape-side reads ---------- *)

let raw_sum c =
  let acc = ref 0 in
  let n = Array.length c.c_cells / stride in
  for i = 0 to n - 1 do
    acc := !acc + c.c_cells.(i * stride)
  done;
  !acc

(* The racy cell sum can transiently regress between scrapes (a cell read
   mid-update); the watermark makes the exported counter monotone, which
   rate computations downstream rely on. *)
let counter_value c =
  let v = raw_sum c in
  if v > c.c_watermark then c.c_watermark <- v;
  c.c_watermark

let histogram_merged h = Histogram.merge_all (Array.to_list h.h_cells)

(* ---------- OpenMetrics text exposition ---------- *)

let escape_label_value buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let escape_help buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.9g" f)

(* Render a label set, optionally with a trailing le pair. [le_str]
   carries the pre-formatted bound ("0.001" or "+Inf"). *)
let add_labelset buf labels ~le_str =
  if labels <> [] || le_str <> None then begin
    Buffer.add_char buf '{';
    let first = ref true in
    let sep () =
      if !first then first := false else Buffer.add_char buf ','
    in
    List.iter
      (fun (k, v) ->
        sep ();
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape_label_value buf v;
        Buffer.add_char buf '"')
      labels;
    (match le_str with
    | Some le ->
        sep ();
        Buffer.add_string buf "le=\"";
        Buffer.add_string buf le;
        Buffer.add_char buf '"'
    | None -> ());
    Buffer.add_char buf '}'
  end

let add_sample buf name labels ?le_str value_str =
  Buffer.add_string buf name;
  add_labelset buf labels ~le_str;
  Buffer.add_char buf ' ';
  Buffer.add_string buf value_str;
  Buffer.add_char buf '\n'

let fmt_scaled scale v =
  let buf = Buffer.create 24 in
  add_float buf (float_of_int v *. scale);
  Buffer.contents buf

let expose t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun f ->
      if f.f_help <> "" then begin
        Buffer.add_string buf "# HELP ";
        Buffer.add_string buf f.f_name;
        Buffer.add_char buf ' ';
        escape_help buf f.f_help;
        Buffer.add_char buf '\n'
      end;
      Buffer.add_string buf "# TYPE ";
      Buffer.add_string buf f.f_name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (kind_name f.f_kind);
      Buffer.add_char buf '\n';
      List.iter
        (fun s ->
          match s.s_instr with
          | C c ->
              add_sample buf (f.f_name ^ "_total") s.s_labels
                (string_of_int (counter_value c))
          | C_fn fn ->
              add_sample buf (f.f_name ^ "_total") s.s_labels
                (string_of_int (fn ()))
          | G_fn fn ->
              let vbuf = Buffer.create 24 in
              add_float vbuf (fn ());
              add_sample buf f.f_name s.s_labels (Buffer.contents vbuf)
          | H h ->
              (* Merge once per scrape: the cumulative bucket counts all
                 come from the same frozen copy, so they are monotone in
                 le by construction even while workers keep recording. *)
              let m = histogram_merged h in
              let count = Histogram.count m in
              Array.iter
                (fun b ->
                  add_sample buf (f.f_name ^ "_bucket") s.s_labels
                    ~le_str:(fmt_scaled h.h_scale b)
                    (string_of_int (Histogram.count_le m b)))
                h.h_le;
              add_sample buf (f.f_name ^ "_bucket") s.s_labels
                ~le_str:"+Inf" (string_of_int count);
              let sbuf = Buffer.create 24 in
              add_float sbuf (Histogram.sum m *. h.h_scale);
              add_sample buf (f.f_name ^ "_sum") s.s_labels
                (Buffer.contents sbuf);
              add_sample buf (f.f_name ^ "_count") s.s_labels
                (string_of_int count))
        (List.rev f.f_series))
    (List.rev t.families);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ---------- JSON twin ---------- *)

let labels_json labels =
  Sink.Obj (List.map (fun (k, v) -> (k, Sink.String v)) labels)

let to_json t =
  let fam_json f =
    let series_json s =
      let base = [ ("labels", labels_json s.s_labels) ] in
      let rest =
        match s.s_instr with
        | C c -> [ ("value", Sink.Int (counter_value c)) ]
        | C_fn fn -> [ ("value", Sink.Int (fn ())) ]
        | G_fn fn -> [ ("value", Sink.Float (fn ())) ]
        | H h ->
            let m = histogram_merged h in
            [
              ("count", Sink.Int (Histogram.count m));
              ("sum", Sink.Float (Histogram.sum m *. h.h_scale));
              ("p50", Sink.Int (Histogram.quantile m 0.50));
              ("p99", Sink.Int (Histogram.quantile m 0.99));
              ("max", Sink.Int (Histogram.max_value m));
              ( "buckets",
                Sink.List
                  (Array.to_list h.h_le
                  |> List.map (fun b ->
                         Sink.Obj
                           [
                             ("le", Sink.Int b);
                             ("count", Sink.Int (Histogram.count_le m b));
                           ])) );
            ]
      in
      Sink.Obj (base @ rest)
    in
    Sink.Obj
      [
        ("name", Sink.String f.f_name);
        ("type", Sink.String (kind_name f.f_kind));
        ("help", Sink.String f.f_help);
        ("series", Sink.List (List.map series_json (List.rev f.f_series)));
      ]
  in
  Sink.Obj
    [ ("metrics", Sink.List (List.map fam_json (List.rev t.families))) ]

(* ---------- flat assoc (binary STATS_FULL) ---------- *)

(* Histogram sample values stay in the recorded unit (ns) here: the wire
   carries ints, and scaling to seconds would round every latency to 0. *)
let to_assoc t =
  let suffix labels =
    if labels = [] then ""
    else
      let buf = Buffer.create 32 in
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_char buf '=';
          Buffer.add_string buf v)
        labels;
      Buffer.add_char buf '}';
      Buffer.contents buf
  in
  let out = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun s ->
          let lb = suffix s.s_labels in
          let put name v = out := (name, v) :: !out in
          match s.s_instr with
          | C c -> put (f.f_name ^ "_total" ^ lb) (counter_value c)
          | C_fn fn -> put (f.f_name ^ "_total" ^ lb) (fn ())
          | G_fn fn -> put (f.f_name ^ lb) (int_of_float (Float.round (fn ())))
          | H h ->
              let m = histogram_merged h in
              put (f.f_name ^ "_count" ^ lb) (Histogram.count m);
              put (f.f_name ^ "_p50" ^ lb) (Histogram.quantile m 0.50);
              put (f.f_name ^ "_p99" ^ lb) (Histogram.quantile m 0.99);
              put (f.f_name ^ "_max" ^ lb) (Histogram.max_value m))
        (List.rev f.f_series))
    (List.rev t.families);
  List.rev !out

(* ---------- exposition parser ---------- *)

(* A strict-enough OpenMetrics reader for vbr-top, the loopback tests and
   the CI smoke job: families from # TYPE/# HELP lines, samples attached
   to their family by name (modulo the standard _total/_bucket/_sum/_count
   suffixes), label values unescaped, a required # EOF terminator. *)

type psample = { ps_name : string; ps_labels : labels; ps_value : float }

type pfamily = {
  pf_name : string;
  pf_kind : string;
  pf_help : string;
  pf_samples : psample list;
}

exception Bad of string

let float_of_om s =
  match s with
  | "+Inf" | "Inf" -> infinity
  | "-Inf" -> neg_infinity
  | "NaN" -> nan
  | _ -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> raise (Bad (Printf.sprintf "bad sample value %S" s)))

(* Stdlib's [incr], un-shadowed by the instrument [incr] above. *)
let bump (i : int ref) = i := !i + 1

(* [line.[!i] = '{']; consumes through the closing '}'. *)
let parse_label_pairs line i =
  let n = String.length line in
  let out = ref [] in
  bump i;
  let expect c =
    if !i >= n || line.[!i] <> c then
      raise (Bad (Printf.sprintf "expected %C in label set" c));
    bump i
  in
  let rec pairs () =
    if !i >= n then raise (Bad "unterminated label set")
    else if line.[!i] = '}' then bump i
    else begin
      let start = !i in
      while !i < n && line.[!i] <> '=' do bump i done;
      let name = String.sub line start (!i - start) in
      if not (valid_label_name name) then
        raise (Bad (Printf.sprintf "bad label name %S" name));
      expect '=';
      expect '"';
      let buf = Buffer.create 16 in
      let rec value () =
        if !i >= n then raise (Bad "unterminated label value")
        else
          match line.[!i] with
          | '"' -> bump i
          | '\\' ->
              if !i + 1 >= n then raise (Bad "dangling escape");
              (match line.[!i + 1] with
              | '\\' -> Buffer.add_char buf '\\'
              | '"' -> Buffer.add_char buf '"'
              | 'n' -> Buffer.add_char buf '\n'
              | c -> raise (Bad (Printf.sprintf "bad escape \\%C" c)));
              i := !i + 2;
              value ()
          | c ->
              Buffer.add_char buf c;
              bump i;
              value ()
      in
      value ();
      out := (name, Buffer.contents buf) :: !out;
      if !i < n && line.[!i] = ',' then begin
        bump i;
        pairs ()
      end
      else if !i < n && line.[!i] = '}' then bump i
      else raise (Bad "expected ',' or '}' in label set")
    end
  in
  pairs ();
  List.rev !out

let parse_sample_line line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do bump i done;
  if !i = 0 then raise (Bad "missing metric name");
  let name = String.sub line 0 !i in
  let labels =
    if !i < n && line.[!i] = '{' then parse_label_pairs line i else []
  in
  while !i < n && line.[!i] = ' ' do bump i done;
  let vstart = !i in
  while !i < n && line.[!i] <> ' ' do bump i done;
  if !i = vstart then raise (Bad "missing sample value");
  (* Anything after the value (an optional timestamp) is ignored. *)
  let value = float_of_om (String.sub line vstart (!i - vstart)) in
  { ps_name = name; ps_labels = normalize_labels labels; ps_value = value }

type builder = {
  mutable b_kind : string;
  mutable b_help : string;
  mutable b_samples : psample list;  (* newest first *)
}

let sample_suffixes = [ "_total"; "_bucket"; "_sum"; "_count"; "_created" ]

let parse text =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let fam name =
    match Hashtbl.find_opt tbl name with
    | Some b -> b
    | None ->
        let b = { b_kind = "untyped"; b_help = ""; b_samples = [] } in
        Hashtbl.add tbl name b;
        order := name :: !order;
        b
  in
  let base_of sample_name =
    if Hashtbl.mem tbl sample_name then sample_name
    else
      let strip suf =
        if
          String.length sample_name > String.length suf
          && String.ends_with ~suffix:suf sample_name
        then
          Some
            (String.sub sample_name 0
               (String.length sample_name - String.length suf))
        else None
      in
      match
        List.find_opt (Hashtbl.mem tbl) (List.filter_map strip sample_suffixes)
      with
      | Some base -> base
      | None -> sample_name
  in
  let unescape_help s =
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '\\' && !i + 1 < n then begin
         (match s.[!i + 1] with
         | 'n' -> Buffer.add_char buf '\n'
         | c -> Buffer.add_char buf c);
         bump i
       end
       else Buffer.add_char buf s.[!i]);
      bump i
    done;
    Buffer.contents buf
  in
  let saw_eof = ref false in
  try
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun ln line ->
        let err msg = raise (Bad (Printf.sprintf "line %d: %s" (ln + 1) msg)) in
        try
          if line = "" then ()
          else if !saw_eof then err "content after # EOF"
          else if String.length line >= 1 && line.[0] = '#' then begin
            match String.split_on_char ' ' line with
            | "#" :: "EOF" :: _ -> saw_eof := true
            | "#" :: "TYPE" :: name :: kind :: _ -> (fam name).b_kind <- kind
            | "#" :: "HELP" :: name :: rest ->
                (fam name).b_help <- unescape_help (String.concat " " rest)
            | "#" :: "UNIT" :: _ -> ()
            | _ -> ()  (* free-form comment *)
          end
          else begin
            let s = parse_sample_line line in
            let b = fam (base_of s.ps_name) in
            b.b_samples <- s :: b.b_samples
          end
        with Bad msg when not (String.length msg > 5 && String.sub msg 0 5 = "line ")
          -> err msg)
      lines;
    if not !saw_eof then raise (Bad "missing # EOF terminator");
    Ok
      (List.rev_map
         (fun name ->
           let b = Hashtbl.find tbl name in
           {
             pf_name = name;
             pf_kind = b.b_kind;
             pf_help = b.b_help;
             pf_samples = List.rev b.b_samples;
           })
         !order)
  with Bad msg -> Error msg

(* ---------- parsed-form helpers ---------- *)

let find_family fams name = List.find_opt (fun f -> f.pf_name = name) fams

let labels_subset ~sub labels =
  List.for_all (fun (k, v) -> List.assoc_opt k labels = Some v) sub

let find_sample fams ?(labels = []) name =
  let labels = normalize_labels labels in
  List.find_map
    (fun f ->
      List.find_opt
        (fun s -> s.ps_name = name && labels_subset ~sub:labels s.ps_labels)
        f.pf_samples)
    fams

let sample_value fams ?labels name =
  Option.map (fun s -> s.ps_value) (find_sample fams ?labels name)

let buckets_of f ~labels =
  let labels = normalize_labels labels in
  f.pf_samples
  |> List.filter_map (fun s ->
         if
           s.ps_name = f.pf_name ^ "_bucket"
           && labels_subset ~sub:labels s.ps_labels
         then
           match List.assoc_opt "le" s.ps_labels with
           | Some le -> Some (float_of_om le, s.ps_value)
           | None -> None
         else None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let quantile_of_buckets buckets q =
  match List.rev buckets with
  | [] -> None
  | (_, total) :: _ ->
      if total <= 0.0 then None
      else
        let q = Float.max 0.0 (Float.min 1.0 q) in
        let target = q *. total in
        List.find_map
          (fun (le, cum) -> if cum >= target then Some le else None)
          buckets
