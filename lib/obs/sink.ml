type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  (* JSON has no nan/inf; emit null so consumers keep parsing. *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.9g" f)

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  emit buf j;
  Buffer.contents buf

let write_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Converters from the other obs modules.                              *)
(* ------------------------------------------------------------------ *)

let of_counters snap =
  Obj (List.map (fun (k, v) -> (k, Int v)) (Counters.to_assoc snap))

let of_summary (s : Histogram.summary) =
  Obj
    [
      ("count", Int s.Histogram.count);
      ("mean_ns", Float s.Histogram.mean);
      ("p50_ns", Int s.Histogram.p50);
      ("p90_ns", Int s.Histogram.p90);
      ("p99_ns", Int s.Histogram.p99);
      ("max_ns", Int s.Histogram.max);
    ]

let of_samples conv samples =
  List
    (List.map
       (fun { Sampler.elapsed_ms; value } ->
         Obj (("t_ms", Float elapsed_ms) :: conv value))
       samples)

(* ------------------------------------------------------------------ *)
(* CSV.                                                                *)
(* ------------------------------------------------------------------ *)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let csv ~header ~rows =
  let line cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let write_csv path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (csv ~header ~rows))
