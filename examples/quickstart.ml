(* Quickstart: a lock-free hash set with VBR memory reclamation.
   Run with: dune exec examples/quickstart.exe *)

let n_domains = 4

let () =
  (* 1. The simulated heap: a bounded arena of type-preserving slots, plus
     the shared pool recycled slots circulate through. *)
  let arena = Memsim.Arena.create ~capacity:100_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in

  (* 2. A VBR instance: one shared epoch, one context per thread. *)
  let vbr = Vbr_core.Vbr.create_tuned ~arena ~global ~n_threads:n_domains () in

  (* 3. A hash set on top of it (buckets at load factor 1). *)
  let set = Dstruct.Vbr_hash.create vbr ~buckets:1024 in

  (* 4. Hammer it from several domains. Thread ids index VBR contexts, so
     each domain uses its own tid. A tiny barrier separates the insert and
     delete phases so the counts below are deterministic. *)
  let inserted = Array.make n_domains 0 in
  let phase = Atomic.make 0 in
  let barrier () =
    Atomic.incr phase;
    while Atomic.get phase < n_domains do
      Domain.cpu_relax ()
    done
  in
  let domains =
    List.init n_domains (fun tid ->
        Domain.spawn (fun () ->
            for k = 0 to 4_999 do
              (* Every domain races to insert every key: per key, exactly
                 one insert across all domains wins. *)
              if Dstruct.Vbr_hash.insert set ~tid k then
                inserted.(tid) <- inserted.(tid) + 1
            done;
            barrier ();
            (* Then each domain deletes its own residue class. *)
            for k = 0 to 4_999 do
              if k mod n_domains = tid then
                ignore (Dstruct.Vbr_hash.delete set ~tid k)
            done))
  in
  List.iter Domain.join domains;

  let total_inserted = Array.fold_left ( + ) 0 inserted in
  Printf.printf "insert wins across domains: %d (expected 5000)\n"
    total_inserted;
  Printf.printf "final size: %d (expected 0)\n" (Dstruct.Vbr_hash.size set);
  Printf.printf "contains 42 -> %b, contains 5000 -> %b\n"
    (Dstruct.Vbr_hash.contains set ~tid:0 42)
    (Dstruct.Vbr_hash.contains set ~tid:0 5000);

  (* 5. VBR's bookkeeping: slots were recycled, the epoch barely moved. *)
  let stats = Vbr_core.Vbr.total_stats vbr in
  Format.printf "VBR stats: %a@." Vbr_core.Vbr.pp_stats stats;
  Printf.printf "arena slots ever claimed: %d (vs %d allocations)\n"
    (Memsim.Arena.allocated arena)
    stats.Vbr_core.Vbr.allocs
