(* A multi-producer multi-consumer job pipeline on the VBR Michael-Scott
   queue (an extension structure: the paper cites [38] as VBR-compatible
   but does not evaluate queues). Producers enqueue jobs, workers dequeue
   and execute them; the queue's nodes recycle through VBR's pools so the
   pipeline runs in bounded memory at any backlog.

   Run with: dune exec examples/job_queue.exe *)

let producers = 2
let workers = 2
let jobs_per_producer = 50_000

let () =
  let arena = Memsim.Arena.create ~capacity:200_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let vbr =
    Vbr_core.Vbr.create_tuned ~arena ~global ~n_threads:(producers + workers) ()
  in
  let queue = Dstruct.Vbr_queue.create vbr in

  (* A job is encoded as producer * 1e6 + sequence; "executing" it checks
     the per-producer FIFO property on the fly. *)
  let produced = Atomic.make 0 in
  let executed = Atomic.make 0 in
  let order_violations = Atomic.make 0 in
  let last_seen = Array.init workers (fun _ -> Array.make producers 0) in

  let producer tid =
    for seq = 1 to jobs_per_producer do
      Dstruct.Vbr_queue.enqueue queue ~tid ((tid * 1_000_000) + seq);
      Atomic.incr produced
    done
  in
  let worker w =
    let tid = producers + w in
    let total = producers * jobs_per_producer in
    while Atomic.get executed < total do
      match Dstruct.Vbr_queue.dequeue queue ~tid with
      | Some job ->
          let p = job / 1_000_000 and seq = job mod 1_000_000 in
          (* Any single worker must see each producer's jobs in order. *)
          if seq <= last_seen.(w).(p) then Atomic.incr order_violations;
          last_seen.(w).(p) <- seq;
          Atomic.incr executed
      | None -> Domain.cpu_relax ()
    done
  in

  let ws = List.init workers (fun w -> Domain.spawn (fun () -> worker w)) in
  let ps = List.init producers (fun tid -> Domain.spawn (fun () -> producer tid)) in
  List.iter Domain.join ps;
  List.iter Domain.join ws;

  Printf.printf "jobs produced: %d, executed: %d, left in queue: %d\n"
    (Atomic.get produced) (Atomic.get executed)
    (Dstruct.Vbr_queue.length queue);
  Printf.printf "per-worker FIFO violations: %d (expected 0)\n"
    (Atomic.get order_violations);
  let stats = Vbr_core.Vbr.total_stats vbr in
  Printf.printf
    "queue nodes allocated: %d, recycled: %d — arena footprint just %d slots\n"
    stats.Vbr_core.Vbr.allocs stats.Vbr_core.Vbr.recycled
    (Memsim.Arena.allocated arena)
