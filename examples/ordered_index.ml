(* A concurrent ordered index on the VBR skiplist: writer domains insert
   timestamped readings while an expirer concurrently drops readings older
   than a retention horizon — the ordered-set workload skiplists exist
   for. Because deletes retire into VBR's pools and inserts re-allocate
   from them, the index runs in a bounded arena forever.

   Run with: dune exec examples/ordered_index.exe *)

let writers = 3
let readings_per_writer = 60_000
let retention = 20_000

let () =
  let arena = Memsim.Arena.create ~capacity:300_000 in
  let global =
    Memsim.Global_pool.create ~max_level:Dstruct.Skiplist.max_level
  in
  let vbr = Vbr_core.Vbr.create_tuned ~arena ~global ~n_threads:(writers + 1) () in
  let index = Dstruct.Vbr_skiplist.create vbr in

  let clock = Atomic.make 0 in
  let written = Array.make writers 0 in

  let writer tid =
    for _ = 1 to readings_per_writer do
      (* Interleaved timestamps: each writer owns a residue class so
         every insert is fresh. *)
      let t = Atomic.fetch_and_add clock 1 in
      let key = (t * writers) + tid in
      if Dstruct.Vbr_skiplist.insert index ~tid key then
        written.(tid) <- written.(tid) + 1
    done
  in

  let expirer () =
    let tid = writers in
    let expired = ref 0 in
    let cursor = ref 0 in
    let total = writers * readings_per_writer in
    while !cursor < (total - retention) * writers do
      let horizon = (Atomic.get clock * writers) - (retention * writers) in
      while !cursor < horizon do
        if Dstruct.Vbr_skiplist.delete index ~tid !cursor then incr expired;
        incr cursor
      done;
      Domain.cpu_relax ()
    done;
    !expired
  in

  let e = Domain.spawn expirer in
  let ws = List.init writers (fun tid -> Domain.spawn (fun () -> writer tid)) in
  List.iter Domain.join ws;
  let expired = Domain.join e in

  let inserted = Array.fold_left ( + ) 0 written in
  Printf.printf "readings inserted: %d, expired: %d\n" inserted expired;
  let live = Dstruct.Vbr_skiplist.to_list index in
  Printf.printf "live readings: %d (retention window %d)\n" (List.length live)
    retention;
  (* The index is ordered: the quiesced scan must be sorted and recent. *)
  let sorted = List.sort compare live in
  assert (live = sorted);
  (match (live, List.rev live) with
  | oldest :: _, newest :: _ ->
      Printf.printf "oldest live timestamp: %d, newest: %d\n" oldest newest
  | _ -> ());
  Printf.printf "arena footprint: %d slots for %d total insertions\n"
    (Memsim.Arena.allocated arena)
    inserted
