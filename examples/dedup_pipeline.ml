(* A concurrent de-duplication stage, the kind of pipeline the paper's
   introduction motivates: several producer domains pump event IDs (with
   heavy duplication and a sliding window) through a shared lock-free hash
   set; membership inserts decide uniqueness, and an eviction domain
   expires old IDs so the set — and thanks to VBR, the memory — stays
   bounded no matter how long the stream runs.

   Run with: dune exec examples/dedup_pipeline.exe *)

let producers = 3
let window = 8_192
let events_per_producer = 200_000

let () =
  let arena = Memsim.Arena.create ~capacity:200_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let vbr =
    Vbr_core.Vbr.create_tuned ~arena ~global ~n_threads:(producers + 1) ()
  in
  let seen = Dstruct.Vbr_hash.create vbr ~buckets:window in

  let unique = Array.make producers 0 in
  let duplicate = Array.make producers 0 in
  let produced = Atomic.make 0 in
  let done_flag = Atomic.make false in

  let producer tid =
    let rng = Harness.Rng.create ~seed:(tid + 1) in
    for _ = 1 to events_per_producer do
      (* Event IDs drift forward with the shared stream clock, so recent
         IDs repeat a lot and old ones never come back — the classic
         sliding-window dedup shape. *)
      let t = Atomic.fetch_and_add produced 1 in
      let id = t - Harness.Rng.below rng (window / 2) in
      if Dstruct.Vbr_hash.insert seen ~tid id then
        unique.(tid) <- unique.(tid) + 1
      else duplicate.(tid) <- duplicate.(tid) + 1
    done
  in

  (* The evictor trims IDs that have fallen out of every producer's
     window, so retired nodes keep flowing back through the VBR pools. *)
  let evictor () =
    let tid = producers in
    let low_water = ref 0 in
    while not (Atomic.get done_flag) do
      let horizon = Atomic.get produced - window in
      while !low_water < horizon do
        ignore (Dstruct.Vbr_hash.delete seen ~tid !low_water);
        incr low_water
      done;
      Domain.cpu_relax ()
    done
  in

  let ev = Domain.spawn evictor in
  let ps = List.init producers (fun tid -> Domain.spawn (fun () -> producer tid)) in
  List.iter Domain.join ps;
  Atomic.set done_flag true;
  Domain.join ev;

  let u = Array.fold_left ( + ) 0 unique in
  let d = Array.fold_left ( + ) 0 duplicate in
  Printf.printf "events: %d  unique: %d  duplicates: %d (%.1f%%)\n" (u + d) u d
    (100.0 *. float_of_int d /. float_of_int (u + d));
  Printf.printf "live window entries at the end: %d\n"
    (Dstruct.Vbr_hash.size seen);
  let stats = Vbr_core.Vbr.total_stats vbr in
  Printf.printf
    "allocations: %d, served by recycling: %d (%.1f%%), arena footprint: %d \
     slots\n"
    stats.Vbr_core.Vbr.allocs stats.Vbr_core.Vbr.recycled
    (100.0
    *. float_of_int stats.Vbr_core.Vbr.recycled
    /. float_of_int (max 1 stats.Vbr_core.Vbr.allocs))
    (Memsim.Arena.allocated arena);
  Printf.printf "global epoch advanced only %d times for %d allocations\n"
    (Vbr_core.Epoch.advance_counted (Vbr_core.Vbr.epoch vbr))
    stats.Vbr_core.Vbr.allocs
