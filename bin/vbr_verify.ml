(* vbr-verify: the typed, interprocedural companion to vbr-lint (see
   DESIGN.md §2.14). Everything lives in the [verify] library so the
   test suite can drive the same analysis over fixture trees. *)

let () = exit (Verify.Driver.main ())
