(* vbr-benchdiff: the CI perf ratchet (DESIGN §2.13). Compares freshly
   measured BENCH_*.json panels against committed baselines point by
   point and exits 1 if any shared (structure, scheme, threads) point
   regressed beyond the threshold.

     vbr-benchdiff BENCH_fig2b.json:fresh/BENCH_fig2b.json ...

   Each positional argument is baseline:candidate. Threshold resolution:
   --threshold flag, then the BENCH_DIFF_THRESHOLD env var, then 0.15. *)

let () =
  let open Cmdliner in
  let pairs =
    let doc =
      "Panel pairs to compare, as $(i,BASELINE):$(i,CANDIDATE) JSON paths."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"BASE:CAND" ~doc)
  in
  let threshold =
    let doc =
      "Maximum tolerated per-point throughput drop, as a fraction of the \
       baseline (0.15 = fail below 0.85x). Overrides the \
       BENCH_DIFF_THRESHOLD environment variable; default 0.15."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"FRACTION" ~doc)
  in
  let json_out =
    let doc = "Write the full diff report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)
  in
  let main pairs threshold json_out =
    let threshold = Benchdiff.resolve_threshold threshold in
    let parsed =
      List.map
        (fun spec ->
          match String.index_opt spec ':' with
          | Some i ->
              ( String.sub spec 0 i,
                String.sub spec (i + 1) (String.length spec - i - 1) )
          | None ->
              Printf.eprintf
                "vbr-benchdiff: %S is not BASELINE:CANDIDATE\n" spec;
              exit 2)
        pairs
    in
    let reports =
      List.map
        (fun (baseline, candidate) ->
          match Benchdiff.compare_files ~threshold ~baseline ~candidate with
          | Ok r ->
              Benchdiff.print_report stdout r;
              r
          | Error msg ->
              Printf.eprintf "vbr-benchdiff: %s\n" msg;
              exit 2)
        parsed
    in
    (match json_out with
    | None -> ()
    | Some path ->
        Obs.Sink.write_file path
          (Obs.Sink.Obj
             [
               ("tool", Obs.Sink.String "vbr-benchdiff");
               ("threshold", Obs.Sink.Float threshold);
               ( "pass",
                 Obs.Sink.Bool
                   (List.for_all
                      (fun r -> r.Benchdiff.r_regressions = [])
                      reports) );
               ( "panels",
                 Obs.Sink.List (List.map Benchdiff.report_json reports) );
             ]);
        Printf.printf "wrote %s\n%!" path);
    if List.exists (fun r -> r.Benchdiff.r_regressions <> []) reports then
      exit 1
  in
  let cmd =
    Cmd.v
      (Cmd.info "vbr-benchdiff"
         ~doc:
           "Per-point benchmark regression gate over BENCH_*.json panels")
      Term.(const main $ pairs $ threshold $ json_out)
  in
  exit (Cmd.eval cmd)
