(* The vbr-kv server binary: the lock-free hash table (any registry
   scheme, selected at startup) behind the net subsystem's TCP protocol.

   Examples:
     dune exec bin/vbr_kv.exe -- --scheme vbr --port 4150 --workers 4
     dune exec bin/vbr_kv.exe -- --scheme ebr --port 0 --port-file kv.port

   Runs until SIGINT/SIGTERM, then drains the workers, prints the final
   stats and exits 0 — the clean-shutdown contract the CI net job gates
   on. *)

let stop_requested = Atomic.make false

let install_signals () =
  let handle = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle

let run scheme host port workers range buckets capacity retire_threshold
    prefill port_file metrics_port metrics_port_file =
  match Net.Server.scheme_of_cli scheme with
  | Result.Error msg ->
      prerr_endline msg;
      exit 2
  | Ok scheme ->
      let cfg =
        {
          Net.Server.host;
          port;
          workers;
          scheme;
          range;
          buckets = (match buckets with Some b -> b | None -> range);
          capacity;
          retire_threshold;
          prefill;
          metrics_port;
        }
      in
      install_signals ();
      let server =
        try Net.Server.start cfg
        with
        | Unix.Unix_error (e, _, _) ->
            Printf.eprintf "vbr-kv: cannot bind %s:%d: %s\n" host port
              (Unix.error_message e);
            exit 1
        | Invalid_argument msg ->
            Printf.eprintf "vbr-kv: %s\n" msg;
            exit 2
      in
      let bound = Net.Server.port server in
      Printf.printf
        "vbr-kv: serving hash/%s on %s:%d (%d workers, range %d, buckets %d%s)\n\
         %!"
        scheme host bound workers range cfg.Net.Server.buckets
        (if prefill then ", prefilled" else "");
      Option.iter
        (fun path ->
          let oc = open_out path in
          Printf.fprintf oc "%d\n" bound;
          close_out oc)
        port_file;
      Option.iter
        (fun mport ->
          Printf.printf "vbr-kv: metrics at http://%s:%d/metrics\n%!" host
            mport;
          Option.iter
            (fun path ->
              let oc = open_out path in
              Printf.fprintf oc "%d\n" mport;
              close_out oc)
            metrics_port_file)
        (Net.Server.metrics_port server);
      while not (Atomic.get stop_requested) do
        (try Unix.sleepf 0.2
         with Unix.Unix_error (Unix.EINTR, _, _) -> ())
      done;
      let final = Net.Server.stop server in
      print_endline "vbr-kv: shutting down; final stats:";
      List.iter (fun (k, v) -> Printf.printf "  %-18s %12d\n" k v) final;
      flush stdout;
      exit 0

let () =
  let open Cmdliner in
  let scheme =
    Arg.(
      value & opt string "vbr"
      & info [ "scheme" ]
          ~doc:
            "Reclamation scheme for the hash table: ebr | hp | he | ibr | \
             vbr | none.")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Bind address.")
  in
  let port =
    Arg.(
      value & opt int 4150
      & info [ "port" ] ~doc:"TCP port; 0 picks an ephemeral one.")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~doc:"Worker domains (= SMR thread ids).")
  in
  let range =
    Arg.(value & opt int 65536 & info [ "range" ] ~doc:"Key space [0, range).")
  in
  let buckets =
    Arg.(
      value
      & opt (some int) None
      & info [ "buckets" ] ~doc:"Hash buckets (default: range).")
  in
  let capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "capacity" ] ~doc:"Arena capacity (default: auto-sized).")
  in
  let retire_threshold =
    Arg.(
      value
      & opt (some int) None
      & info [ "retire-threshold" ] ~doc:"Retired-list flush threshold.")
  in
  let prefill =
    Arg.(
      value & flag
      & info [ "prefill" ]
          ~doc:"Preload the deterministic half-range initial set.")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"PATH"
          ~doc:
            "Write the bound port to $(docv) once listening (for scripts \
             using --port 0).")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ]
          ~doc:
            "Serve GET /metrics (OpenMetrics) and /metrics.json on this \
             port; 0 picks an ephemeral one. Off by default.")
  in
  let metrics_port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-port-file" ] ~docv:"PATH"
          ~doc:
            "Write the bound metrics port to $(docv) once listening (for \
             scripts using --metrics-port 0).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "vbr-kv"
         ~doc:"Networked key-value service over the VBR hash table")
      Term.(
        const run $ scheme $ host $ port $ workers $ range $ buckets
        $ capacity $ retire_threshold $ prefill $ port_file $ metrics_port
        $ metrics_port_file)
  in
  exit (Cmd.eval cmd)
