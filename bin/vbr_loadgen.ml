(* The vbr-kv load generator binary: drive a running vbr_kv server with a
   configurable read/update mix and emit BENCH_net.json.

   Example (against a server started with --port 4150):
     dune exec bin/vbr_loadgen.exe -- --port 4150 --clients 8 --duration 5 \
       --mix 90:10 --keydist zipf:0.9

   Exits 0 only when every response decoded and matched its request —
   nonzero on any protocol error, which is what the CI net job gates on. *)

let parse_mix s =
  match String.split_on_char ':' s with
  | [ r; u ] -> (
      match (int_of_string_opt r, int_of_string_opt u) with
      | Some r, Some u when r >= 0 && u >= 0 && r + u = 100 -> Ok r
      | _ -> Error (Printf.sprintf "bad --mix %S (expected R:U summing to 100)" s)
      )
  | _ -> Error (Printf.sprintf "bad --mix %S (expected e.g. 90:10)" s)

let run host port clients duration mix keydist range batch rate value_len seed
    timeline_ms json_path =
  let fail msg =
    prerr_endline msg;
    exit 2
  in
  let reads = match parse_mix mix with Ok r -> r | Error m -> fail m in
  let keydist =
    match Harness.Keygen.parse keydist with
    | Ok d -> d
    | Error m -> fail m
  in
  if clients < 1 then fail "loadgen: --clients must be >= 1";
  if batch < 1 then fail "loadgen: --batch must be >= 1";
  if range < 1 then fail "loadgen: --range must be >= 1";
  if timeline_ms <= 0.0 then fail "loadgen: --timeline-ms must be > 0";
  let cfg =
    {
      Net.Loadgen.host;
      port;
      clients;
      duration;
      reads;
      keydist;
      range;
      batch;
      rate;
      value_len;
      seed;
      timeline_ms;
    }
  in
  let report =
    try Net.Loadgen.run cfg
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "loadgen: cannot reach %s:%d: %s\n" host port
        (Unix.error_message e);
      exit 1
  in
  Net.Loadgen.print_report cfg report;
  Obs.Sink.write_file json_path
    (Obs.Sink.Obj
       [
         ("panel", Obs.Sink.String "net");
         ("points", Obs.Sink.List [ Net.Loadgen.report_json cfg report ]);
       ]);
  Printf.printf "wrote %s\n%!" json_path;
  exit (if report.Net.Loadgen.r_errors > 0 then 1 else 0)

let () =
  let open Cmdliner in
  let host =
    Arg.(
      value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Server address.")
  in
  let port =
    Arg.(value & opt int 4150 & info [ "port" ] ~doc:"Server TCP port.")
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~doc:"Client domains, one connection each.")
  in
  let duration =
    Arg.(
      value & opt float 5.0
      & info [ "duration" ] ~doc:"Seconds of measured traffic.")
  in
  let mix =
    Arg.(
      value & opt string "90:10"
      & info [ "mix" ] ~docv:"R:U"
          ~doc:
            "Read:update percentages (must sum to 100); updates split \
             PUT/DELETE evenly.")
  in
  let keydist =
    Arg.(
      value & opt string "uniform"
      & info [ "keydist" ] ~docv:"DIST"
          ~doc:"Key distribution: uniform | zipf:<theta> with theta in (0,1).")
  in
  let range =
    Arg.(
      value & opt int 65536
      & info [ "range" ] ~doc:"Key space [0, range) — match the server's.")
  in
  let batch =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~doc:"Closed-loop pipeline depth per client.")
  in
  let rate =
    Arg.(
      value
      & opt (some int) None
      & info [ "rate" ]
          ~doc:"Open loop: requests/s per client (omit for closed loop).")
  in
  let value_len =
    Arg.(
      value & opt int 64
      & info [ "value-len" ] ~doc:"PUT payload size in bytes.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base RNG seed.")
  in
  let timeline_ms =
    Arg.(
      value & opt float 1000.0
      & info [ "timeline-ms" ]
          ~doc:"Interval time-series cadence in milliseconds.")
  in
  let json_path =
    Arg.(
      value & opt string "BENCH_net.json"
      & info [ "json" ] ~docv:"PATH" ~doc:"Where to write the panel point.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "vbr-loadgen" ~doc:"Load generator for the vbr-kv server")
      Term.(
        const run $ host $ port $ clients $ duration $ mix $ keydist $ range
        $ batch $ rate $ value_len $ seed $ timeline_ms $ json_path)
  in
  exit (Cmd.eval cmd)
