(* vbr-lint: enforce the repo's SMR usage discipline (see DESIGN.md §2.9).
   Everything lives in the [lint] library so the test suite can drive the
   same checks over fixtures. *)

let () = exit (Lint.Driver.main ())
