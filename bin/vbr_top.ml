(* vbr-top: live terminal view over a vbr-kv server's GET /metrics.

   Examples:
     dune exec bin/vbr_top.exe -- --port 9464
     dune exec bin/vbr_top.exe -- --port 9464 --once
     dune exec bin/vbr_top.exe -- --port 9464 --check   # CI smoke gate

   The default mode clears the screen and re-renders every --interval
   seconds until killed. --once prints a single frame (no escape codes
   beyond plain text). --check scrapes twice, validates the exposition
   (required families, bucket monotonicity, counter monotonicity) and
   exits nonzero on any violation — the machine gate the CI metrics job
   runs concurrently with the load. *)

let run host port interval once check =
  if check then
    match Net.Top.check ~host ~port with
    | Ok () ->
        print_endline "vbr-top: scrape check passed";
        0
    | Error e ->
        Printf.eprintf "vbr-top: scrape check FAILED: %s\n" e;
        1
  else Net.Top.run ~host ~port ~interval_s:interval ~once ()

let () =
  let open Cmdliner in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~doc:"Metrics endpoint address.")
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~doc:"Metrics port (vbr-kv --metrics-port).")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~doc:"Refresh cadence in seconds.")
  in
  let once =
    Arg.(value & flag & info [ "once" ] ~doc:"Render one frame and exit.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Scrape twice, validate the exposition and counter \
             monotonicity, exit nonzero on failure.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "vbr-top" ~doc:"Live view over a vbr-kv /metrics endpoint")
      Term.(const run $ host $ port $ interval $ once $ check)
  in
  exit (Cmd.eval' cmd)
