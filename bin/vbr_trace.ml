(* vbr-trace: replay lifecycle trace CSVs (written by the bench's --trace
   mode) through the offline SMR invariant checker, Lint.Trace_check, and
   report violations in vbr-lint's file:line / rule / hint format. Exit 1
   iff any violation was found (or, under --no-truncation, any input ring
   overwrote events — the CI gate uses that to insist on full traces). *)

let usage = "vbr-trace [--no-truncation] [--quiet] TRACE.csv..."

let () =
  let no_trunc = ref false in
  let quiet = ref false in
  let files = ref [] in
  Arg.parse
    [
      ( "--no-truncation",
        Arg.Set no_trunc,
        " fail on a truncated trace instead of skipping the lifecycle, \
         guard and rollback rules" );
      ("--quiet", Arg.Set quiet, " print findings only, no per-file summary");
    ]
    (fun f -> files := f :: !files)
    usage;
  let files = List.rev !files in
  if files = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun file ->
      match Obs.Trace.load_csv file with
      | exception Failure msg ->
          Printf.eprintf "%s\n" msg;
          failed := true
      | dump ->
          let { Lint.Trace_check.findings; truncated } =
            Lint.Trace_check.check ~file dump
          in
          if truncated then
            if !no_trunc then begin
              Printf.eprintf
                "%s: trace truncated (%d events dropped) under \
                 --no-truncation; raise the ring capacity or shrink the op \
                 budget\n"
                file dump.Obs.Trace.d_dropped;
              failed := true
            end
            else
              Printf.eprintf
                "%s: warning: %d events dropped; lifecycle, guard and \
                 rollback rules skipped\n"
                file dump.Obs.Trace.d_dropped;
          List.iter (fun f -> print_endline (Lint_core.Finding.to_string f)) findings;
          if findings <> [] then failed := true
          else if not !quiet then
            Printf.printf "%s: %d events (%s, %d threads): no violations\n"
              file
              (Array.length dump.Obs.Trace.d_events)
              dump.Obs.Trace.d_scheme dump.Obs.Trace.d_threads)
    files;
  exit (if !failed then 1 else 0)
