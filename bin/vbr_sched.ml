(* vbr-sched: deterministic schedule exploration over the Schedsim
   scenario table (README "Schedule exploration").

   - `vbr-sched list` prints the scenario names.
   - `vbr-sched explore -s SCENARIO` runs coverage-guided interleavings
     (sleep-set pruning on by default; see --random-tails / --no-dpor /
     --domains) until one fails its checks, prints the full and
     ddmin-shrunk replay tokens, and exits 1. Exit 0 = the budget passed
     clean. Every scenario also emits one machine-readable coverage line
     (distinct states, pruned candidates, exec/s); --json collects them
     into a file for CI.
   - `vbr-sched replay TOKEN` re-runs a token's schedule bit for bit and
     reports the failure (or its absence).
   - `vbr-sched soak --seconds N` sweeps the clean scenarios with
     coverage-guided schedules under rotating seeds until the deadline;
     any catch is shrunk and appended to test/sched_fixtures/ as a new
     fixture, and the run exits 1 — the CI soak gate.

   Exploration over the seeded-bug scenarios is expected to find
   failures (that is what they are for); over lin-*/robust-* a failure
   is a real bug and its shrunk token belongs in test/sched_fixtures/. *)

open Cmdliner

let pp_outcome (r : Schedsim.Explore.report) =
  Printf.printf "scenario   %s\n" r.scenario;
  Printf.printf "steps      %d\n" r.outcome.Schedsim.Sched.steps;
  Printf.printf "decisions  %d recorded\n"
    (Array.length r.outcome.Schedsim.Sched.recorded);
  let done_ =
    Array.fold_left (fun n c -> if c then n + 1 else n) 0
      r.outcome.Schedsim.Sched.completed
  in
  Printf.printf "threads    %d/%d completed\n" done_
    (Array.length r.outcome.Schedsim.Sched.completed);
  (match r.mode with
  | Schedsim.Sched.Plain -> ()
  | Schedsim.Sched.Dpor ->
      Printf.printf "pruned     %d candidates (sleep sets), %d resets\n"
        r.outcome.Schedsim.Sched.pruned r.outcome.Schedsim.Sched.resets);
  match r.failure with
  | None ->
      print_endline "result     PASS";
      0
  | Some f ->
      Printf.printf "result     FAIL [%s] %s\n" f.Schedsim.Explore.cls
        f.Schedsim.Explore.detail;
      1

let list_cmd =
  let doc = "list the scenario table" in
  Cmd.v
    (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter print_endline Schedsim.Explore.scenarios;
          0)
      $ const ())

let scenario_arg =
  let doc =
    "Scenario name (see $(b,list)); 'all' explores the whole table."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "scenario" ] ~docv:"SCENARIO" ~doc)

let seed_arg =
  let doc = "PRNG seed for decision-string generation." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let budget_arg =
  let doc = "Schedules to try per scenario." in
  Arg.(value & opt int 200 & info [ "budget" ] ~docv:"N" ~doc)

let max_len_arg =
  let doc = "Random decision-string length (default: per scenario)." in
  Arg.(value & opt (some int) None & info [ "max-len" ] ~docv:"N" ~doc)

let out_arg =
  let doc =
    "Append failing tokens (one '$(i,shrunk-token) $(i,class)' line each) \
     to this file — CI uploads it as the artifact."
  in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let random_tails_arg =
  let doc =
    "Disable coverage guidance: pure seeded-random decision strings (the \
     pre-fleet behaviour, kept for A/B coverage comparisons)."
  in
  Arg.(value & flag & info [ "random-tails" ] ~doc)

let no_dpor_arg =
  let doc = "Disable sleep-set pruning (mode 'p' schedules)." in
  Arg.(value & flag & info [ "no-dpor" ] ~doc)

let domains_arg =
  let doc =
    "Worker domains; >1 stripes the budget over a parallel fleet with a \
     shared, deterministically merged coverage set."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc)

let json_arg =
  let doc = "Write the per-scenario coverage objects to this JSON file." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let mode_name = function
  | Schedsim.Sched.Plain -> "plain"
  | Schedsim.Sched.Dpor -> "dpor"

let coverage_json ~scenario ~guided ~mode ~domains ~result
    (st : Schedsim.Explore.stats) extra =
  let eps = if st.st_secs > 0. then float_of_int st.st_execs /. st.st_secs else 0. in
  Obs.Sink.Obj
    ([
       ("scenario", Obs.Sink.String scenario);
       ("mode", Obs.Sink.String (mode_name mode));
       ("guided", Obs.Sink.Bool guided);
       ("domains", Obs.Sink.Int domains);
       ("execs", Obs.Sink.Int st.st_execs);
       ("distinct", Obs.Sink.Int st.st_distinct);
       ("pruned", Obs.Sink.Int st.st_pruned);
       ("resets", Obs.Sink.Int st.st_resets);
       ("secs", Obs.Sink.Float st.st_secs);
       ("execs_per_sec", Obs.Sink.Float eps);
       ("result", Obs.Sink.String result);
     ]
    @ extra)

let run_explore ~seed ~budget ~max_len ~guided ~mode ~domains ~scenario =
  if domains <= 1 then
    Schedsim.Explore.explore ~seed ~budget ?max_len ~guided ~mode ~scenario ()
  else begin
    let r = Schedsim.Fleet.explore ~seed ~budget ~domains ~guided ~mode ~scenario () in
    match r.Schedsim.Fleet.r_found with
    | Some f -> Schedsim.Explore.Found f
    | None ->
        Schedsim.Explore.Clean
          {
            Schedsim.Explore.st_execs = r.Schedsim.Fleet.r_execs;
            st_distinct = r.Schedsim.Fleet.r_distinct;
            st_pruned = r.Schedsim.Fleet.r_pruned;
            st_resets = r.Schedsim.Fleet.r_resets;
            st_secs = r.Schedsim.Fleet.r_secs;
          }
  end

(* A scenario over a seeded bug MUST yield a failing schedule (a clean
   sweep means the explorer regressed); any other scenario must sweep
   clean (a failure is a real bug, and its shrunk token is the artifact
   to file). *)
let explore_one ~seed ~budget ~max_len ~out ~guided ~mode ~domains ~jsons
    scenario =
  let expect_bug = List.mem scenario Schedsim.Explore.seeded_bugs in
  let emit ~result (st : Schedsim.Explore.stats) extra =
    let j =
      coverage_json ~scenario ~guided ~mode ~domains ~result st extra
    in
    Printf.printf "coverage %s\n%!" (Obs.Sink.to_string j);
    jsons := j :: !jsons
  in
  match run_explore ~seed ~budget ~max_len ~guided ~mode ~domains ~scenario with
  | Schedsim.Explore.Clean st ->
      emit ~result:"clean" st [];
      if expect_bug then begin
        Printf.printf
          "%-24s UNEXPECTEDLY clean (%d schedules, %d distinct states): the \
           explorer failed to find the seeded bug\n\
           %!"
          scenario st.Schedsim.Explore.st_execs
          st.Schedsim.Explore.st_distinct;
        1
      end
      else begin
        Printf.printf "%-24s clean (%d schedules, %d distinct states)\n%!"
          scenario st.Schedsim.Explore.st_execs
          st.Schedsim.Explore.st_distinct;
        0
      end
  | Schedsim.Explore.Found f ->
      emit ~result:"found" f.Schedsim.Explore.f_stats
        [
          ("class",
           Obs.Sink.String f.Schedsim.Explore.f_failure.Schedsim.Explore.cls);
          ("shrunk", Obs.Sink.String f.Schedsim.Explore.f_shrunk);
        ];
      Printf.printf "%-24s %s [%s] on attempt %d\n" scenario
        (if expect_bug then "found seeded bug" else "FAIL")
        f.Schedsim.Explore.f_failure.Schedsim.Explore.cls
        f.Schedsim.Explore.f_attempt;
      Printf.printf "  %s\n" f.Schedsim.Explore.f_failure.Schedsim.Explore.detail;
      Printf.printf "  token   %s\n" f.Schedsim.Explore.f_token;
      Printf.printf "  shrunk  %s\n%!" f.Schedsim.Explore.f_shrunk;
      Option.iter
        (fun path ->
          let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
          Printf.fprintf oc "%s %s\n" f.Schedsim.Explore.f_shrunk
            f.Schedsim.Explore.f_failure.Schedsim.Explore.cls;
          close_out oc)
        (if expect_bug then None else out);
      if expect_bug then 0 else 1

let explore_cmd =
  let doc = "search interleavings for a failing schedule (coverage-guided)" in
  let run scenario seed budget max_len out random_tails no_dpor domains json =
    let guided = not random_tails in
    let mode =
      if no_dpor then Schedsim.Sched.Plain else Schedsim.Sched.Dpor
    in
    let jsons = ref [] in
    let rc =
      if scenario = "all" then
        List.fold_left
          (fun rc s ->
            max rc
              (explore_one ~seed ~budget ~max_len ~out ~guided ~mode ~domains
                 ~jsons s))
          0 Schedsim.Explore.scenarios
      else
        explore_one ~seed ~budget ~max_len ~out ~guided ~mode ~domains ~jsons
          scenario
    in
    Option.iter
      (fun path -> Obs.Sink.write_file path (Obs.Sink.List (List.rev !jsons)))
      json;
    rc
  in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      const run $ scenario_arg $ seed_arg $ budget_arg $ max_len_arg $ out_arg
      $ random_tails_arg $ no_dpor_arg $ domains_arg $ json_arg)

let token_arg =
  let doc = "Replay token, as printed by $(b,explore)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TOKEN" ~doc)

let replay_cmd =
  let doc = "re-run one token's schedule bit for bit" in
  let run token =
    match Schedsim.Explore.replay token with
    | r -> pp_outcome r
    | exception Schedsim.Token.Malformed m ->
        Printf.eprintf "malformed token: %s\n" m;
        2
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ token_arg)

(* ---------- soak ---------- *)

let seconds_arg =
  let doc = "Wall-clock budget for the whole soak." in
  Arg.(value & opt int 60 & info [ "seconds" ] ~docv:"N" ~doc)

let slab_arg =
  let doc = "Executions per scenario per sweep round." in
  Arg.(value & opt int 48 & info [ "slab" ] ~docv:"N" ~doc)

let fixture_dir_arg =
  let doc = "Directory where caught schedules are written as fixtures." in
  Arg.(
    value
    & opt string "test/sched_fixtures"
    & info [ "dir" ] ~docv:"DIR" ~doc)

(* One fixture file per caught scenario, in the corpus format
   (comment lines, shrunk token, expected failure class): the test
   suite's fixture replay picks it up on the next run, and the CI soak
   gate fails the build the moment one appears. *)
let write_fixture ~dir ~scenario ~seed ~round
    (f : Schedsim.Explore.found) =
  let path = Filename.concat dir (Printf.sprintf "soak-%s.token" scenario) in
  let one_line s =
    String.map (function '\n' | '\r' -> ' ' | c -> c) s
  in
  let oc = open_out path in
  Printf.fprintf oc
    "# Caught by `vbr-sched soak` (round %d, seed %d) and ddmin-shrunk.\n\
     # %s\n\
     # Replay: vbr-sched replay '%s'\n\
     %s\n\
     %s\n"
    round seed
    (one_line f.Schedsim.Explore.f_failure.Schedsim.Explore.detail)
    f.Schedsim.Explore.f_shrunk f.Schedsim.Explore.f_shrunk
    f.Schedsim.Explore.f_failure.Schedsim.Explore.cls;
  close_out oc;
  path

let soak_cmd =
  let doc =
    "coverage-guided soak over the clean scenarios; catches become fixtures"
  in
  let run seconds seed slab dir no_dpor domains =
    let mode =
      if no_dpor then Schedsim.Sched.Plain else Schedsim.Sched.Dpor
    in
    let deadline = Obs.Clock.now_s () +. float_of_int seconds in
    let scenarios =
      List.filter
        (fun s -> not (List.mem s Schedsim.Explore.seeded_bugs))
        Schedsim.Explore.scenarios
    in
    let caught = ref [] in
    let execs = ref 0 in
    let round = ref 0 in
    while Obs.Clock.now_s () < deadline do
      List.iteri
        (fun i scenario ->
          if
            Obs.Clock.now_s () < deadline
            && not (List.mem_assoc scenario !caught)
          then begin
            (* A fresh seed per (scenario, round): each sweep explores
               different territory while staying replayable. *)
            let seed = seed + (1009 * !round) + i in
            match
              run_explore ~seed ~budget:slab ~max_len:None ~guided:true ~mode
                ~domains ~scenario
            with
            | Schedsim.Explore.Clean st ->
                execs := !execs + st.Schedsim.Explore.st_execs
            | Schedsim.Explore.Found f ->
                execs := !execs + f.Schedsim.Explore.f_stats.Schedsim.Explore.st_execs;
                let path = write_fixture ~dir ~scenario ~seed ~round:!round f in
                Printf.printf "CAUGHT %-24s [%s] -> %s\n  %s\n%!" scenario
                  f.Schedsim.Explore.f_failure.Schedsim.Explore.cls path
                  f.Schedsim.Explore.f_shrunk;
                caught := (scenario, path) :: !caught
          end)
        scenarios;
      incr round
    done;
    Printf.printf "soak: %d rounds, %d executions, %d scenario(s), %d caught\n%!"
      !round !execs (List.length scenarios) (List.length !caught);
    if !caught = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "soak" ~doc)
    Term.(
      const run $ seconds_arg $ seed_arg $ slab_arg $ fixture_dir_arg
      $ no_dpor_arg $ domains_arg)

let () =
  let doc = "deterministic schedule exploration for the SMR schemes" in
  let info = Cmd.info "vbr-sched" ~doc in
  exit
    (Cmd.eval' (Cmd.group info [ list_cmd; explore_cmd; replay_cmd; soak_cmd ]))
