(* vbr-sched: deterministic schedule exploration over the Schedsim
   scenario table (README "Schedule exploration").

   - `vbr-sched list` prints the scenario names.
   - `vbr-sched explore -s SCENARIO` runs seeded random interleavings
     until one fails its checks, prints the full and ddmin-shrunk replay
     tokens, and exits 1. Exit 0 = the budget passed clean.
   - `vbr-sched replay TOKEN` re-runs a token's schedule bit for bit and
     reports the failure (or its absence).

   Exploration over the seeded-bug scenarios is expected to find
   failures (that is what they are for); over lin-*/robust-* a failure
   is a real bug and its shrunk token belongs in test/sched_fixtures/. *)

open Cmdliner

let pp_outcome (r : Schedsim.Explore.report) =
  Printf.printf "scenario   %s\n" r.scenario;
  Printf.printf "steps      %d\n" r.outcome.Schedsim.Sched.steps;
  Printf.printf "decisions  %d recorded\n"
    (Array.length r.outcome.Schedsim.Sched.recorded);
  let done_ =
    Array.fold_left (fun n c -> if c then n + 1 else n) 0
      r.outcome.Schedsim.Sched.completed
  in
  Printf.printf "threads    %d/%d completed\n" done_
    (Array.length r.outcome.Schedsim.Sched.completed);
  match r.failure with
  | None ->
      print_endline "result     PASS";
      0
  | Some f ->
      Printf.printf "result     FAIL [%s] %s\n" f.Schedsim.Explore.cls
        f.Schedsim.Explore.detail;
      1

let list_cmd =
  let doc = "list the scenario table" in
  Cmd.v
    (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter print_endline Schedsim.Explore.scenarios;
          0)
      $ const ())

let scenario_arg =
  let doc =
    "Scenario name (see $(b,list)); 'all' explores the whole table."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "scenario" ] ~docv:"SCENARIO" ~doc)

let seed_arg =
  let doc = "PRNG seed for decision-string generation." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let budget_arg =
  let doc = "Schedules to try per scenario." in
  Arg.(value & opt int 200 & info [ "budget" ] ~docv:"N" ~doc)

let max_len_arg =
  let doc = "Random decision-string length (default: per scenario)." in
  Arg.(value & opt (some int) None & info [ "max-len" ] ~docv:"N" ~doc)

let out_arg =
  let doc =
    "Append failing tokens (one '$(i,shrunk-token) $(i,class)' line each) \
     to this file — CI uploads it as the artifact."
  in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

(* A scenario over a seeded bug MUST yield a failing schedule (a clean
   sweep means the explorer regressed); any other scenario must sweep
   clean (a failure is a real bug, and its shrunk token is the artifact
   to file). *)
let explore_one ~seed ~budget ~max_len ~out scenario =
  let expect_bug = List.mem scenario Schedsim.Explore.seeded_bugs in
  match Schedsim.Explore.explore ~seed ~budget ?max_len ~scenario () with
  | Schedsim.Explore.Clean n ->
      if expect_bug then begin
        Printf.printf
          "%-24s UNEXPECTEDLY clean (%d schedules): the explorer failed to \
           find the seeded bug\n\
           %!"
          scenario n;
        1
      end
      else begin
        Printf.printf "%-24s clean (%d schedules)\n%!" scenario n;
        0
      end
  | Schedsim.Explore.Found f ->
      Printf.printf "%-24s %s [%s] on attempt %d\n" scenario
        (if expect_bug then "found seeded bug" else "FAIL")
        f.Schedsim.Explore.f_failure.Schedsim.Explore.cls
        f.Schedsim.Explore.f_attempt;
      Printf.printf "  %s\n" f.Schedsim.Explore.f_failure.Schedsim.Explore.detail;
      Printf.printf "  token   %s\n" f.Schedsim.Explore.f_token;
      Printf.printf "  shrunk  %s\n%!" f.Schedsim.Explore.f_shrunk;
      Option.iter
        (fun path ->
          let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
          Printf.fprintf oc "%s %s\n" f.Schedsim.Explore.f_shrunk
            f.Schedsim.Explore.f_failure.Schedsim.Explore.cls;
          close_out oc)
        (if expect_bug then None else out);
      if expect_bug then 0 else 1

let explore_cmd =
  let doc = "search seeded random interleavings for a failing schedule" in
  let run scenario seed budget max_len out =
    if scenario = "all" then
      List.fold_left
        (fun rc s -> max rc (explore_one ~seed ~budget ~max_len ~out s))
        0 Schedsim.Explore.scenarios
    else explore_one ~seed ~budget ~max_len ~out scenario
  in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      const run $ scenario_arg $ seed_arg $ budget_arg $ max_len_arg $ out_arg)

let token_arg =
  let doc = "Replay token, as printed by $(b,explore)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TOKEN" ~doc)

let replay_cmd =
  let doc = "re-run one token's schedule bit for bit" in
  let run token =
    match Schedsim.Explore.replay token with
    | r -> pp_outcome r
    | exception Schedsim.Token.Malformed m ->
        Printf.eprintf "malformed token: %s\n" m;
        2
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ token_arg)

let () =
  let doc = "deterministic schedule exploration for the SMR schemes" in
  let info = Cmd.info "vbr-sched" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; explore_cmd; replay_cmd ]))
