(* A one-shot measurement CLI: pick any structure, scheme, workload and
   parameters, and get a throughput point plus the scheme's bookkeeping.

   Examples:
     dune exec bin/vbr_bench.exe -- --structure hash --scheme VBR --threads 4
     dune exec bin/vbr_bench.exe -- --structure skiplist --scheme HP \
       --profile update-heavy --range 4096 --duration 1.0 --json point.json *)

open Harness

(* --trace mode: one fixed-op-budget run with a lifecycle trace attached
   (Obs.Trace via Registry.make ?trace), instead of the fixed-time
   measurement — an op budget bounds the event volume so the ring
   (sized for the default budget with ample slack) never overwrites. *)
let run_traced ~structure ~scheme ~threads ~range ~profile ~capacity
    ~retire_threshold ~epoch_freq ~trace_ops ~json_path prefix =
  let trace =
    Obs.Trace.create ~capacity:(1 lsl 18) ~n_threads:threads ~scheme ()
  in
  let make () =
    Registry.make ~structure ~scheme ~n_threads:threads ~range ~capacity
      ?retire_threshold ~epoch_freq ~trace ()
  in
  let mops, _inst =
    Throughput.run_ops ~make ~profile ~threads ~range ~total_ops:trace_ops ()
  in
  let d = Obs.Trace.dump trace in
  let csv = prefix ^ ".csv" and chrome = prefix ^ ".chrome.json" in
  Obs.Trace.write_csv csv d;
  Obs.Trace.write_chrome chrome d;
  let m = Obs.Trace_metrics.compute d in
  let open Obs.Trace_metrics in
  Printf.printf "%s/%s  threads=%d  range=%d  profile=%s  traced, %d ops\n"
    structure scheme threads range profile.Workload.pname trace_ops;
  Printf.printf
    "throughput: %.3f Mops/s (with tracing on; not comparable to untraced \
     runs)\n"
    mops;
  Printf.printf "trace: %d events, %d dropped -> %s, %s\n" m.m_events
    m.m_dropped csv chrome;
  Printf.printf "  retire->reclaim age ns: p50 %d  p99 %d  max %d  (still \
                 unreclaimed at end: %d)\n"
    m.m_age.Obs.Histogram.p50 m.m_age.Obs.Histogram.p99
    m.m_age.Obs.Histogram.max m.m_unreclaimed_end;
  Printf.printf "  epoch stalls ns: p50 %d  p99 %d  over %d advances\n"
    m.m_epoch_stalls.Obs.Histogram.p50 m.m_epoch_stalls.Obs.Histogram.p99
    m.m_epoch_stalls.Obs.Histogram.count;
  Printf.printf "  rollbacks: %d (max %d in any 1 ms window)\n" m.m_rollbacks
    m.m_rollback_burst;
  Printf.printf "check with: dune exec bin/vbr_trace.exe -- %s\n" csv;
  match json_path with
  | None -> ()
  | Some path ->
      Obs.Sink.write_file path (Obs.Trace_metrics.to_json m);
      Printf.printf "wrote %s\n" path

let run structure scheme threads range profile_name duration repeats
    retire_threshold epoch_freq capacity timed trace_prefix trace_ops
    json_path =
  match Workload.of_name profile_name with
  | None ->
      Printf.eprintf "unknown profile %s (expected %s)\n" profile_name
        (String.concat ", "
           (List.map (fun p -> p.Workload.pname) Workload.all));
      exit 2
  | Some profile ->
      if not (Registry.supports ~structure ~scheme) then begin
        Printf.eprintf "%s does not support %s\n" structure scheme;
        exit 2
      end;
      let capacity =
        match capacity with
        | Some c -> c
        | None ->
            let sentinels = if structure = "hash" then range + 2 else 70 in
            let base = sentinels + range + 400_000 in
            if scheme = "NoRecl" then
              base
              + int_of_float
                  (8_000_000.0 *. duration
                  *. float_of_int profile.Workload.inserts
                  /. 100.0)
            else base
      in
      match trace_prefix with
      | Some prefix ->
          run_traced ~structure ~scheme ~threads ~range ~profile ~capacity
            ~retire_threshold ~epoch_freq ~trace_ops ~json_path prefix
      | None ->
      let last = ref None in
      let make () =
        let inst =
          Registry.make ~structure ~scheme ~n_threads:threads ~range ~capacity
            ?retire_threshold
            ~epoch_freq ()
        in
        last := Some inst;
        inst
      in
      let p, latencies =
        if timed then
          Throughput.measure_timed ~make ~profile ~threads ~range ~duration
            ~repeats ()
        else
          ( Throughput.measure ~make ~profile ~threads ~range ~duration
              ~repeats (),
            [] )
      in
      Printf.printf "%s/%s  threads=%d  range=%d  profile=%s\n" structure
        scheme threads range profile.Workload.pname;
      Printf.printf "throughput: %.3f Mops/s  (stddev %.3f over %d repeats)\n"
        p.Throughput.mops p.Throughput.stddev p.Throughput.repeats;
      let counters =
        match !last with
        | Some inst ->
            Printf.printf
              "last run: arena slots %d, unreclaimed %d, epoch advances %d\n"
              (inst.Registry.allocated ())
              (inst.Registry.unreclaimed ())
              (inst.Registry.epoch_advances ());
            inst.Registry.stats ()
        | None -> Obs.Counters.empty_snapshot ()
      in
      print_endline "counters (last run):";
      List.iter
        (fun (name, v) -> if v > 0 then Printf.printf "  %-18s %12d\n" name v)
        (Obs.Counters.to_assoc counters);
      List.iter
        (fun (op, h) ->
          let s = Obs.Histogram.summarize h in
          Printf.printf
            "latency %-8s p50 %6d ns  p90 %6d ns  p99 %6d ns  max %d ns\n" op
            s.Obs.Histogram.p50 s.Obs.Histogram.p90 s.Obs.Histogram.p99
            s.Obs.Histogram.max)
        latencies;
      match json_path with
      | None -> ()
      | Some path ->
          let open Obs.Sink in
          let fields =
            [
              ("structure", String structure);
              ("scheme", String scheme);
              ("threads", Int threads);
              ("range", Int range);
              ("profile", String profile.Workload.pname);
              ("duration_s", Float duration);
              ("mops", Float p.Throughput.mops);
              ("stddev", Float p.Throughput.stddev);
              ("repeats", Int p.Throughput.repeats);
              ("counters", of_counters counters);
            ]
            @
            match latencies with
            | [] -> []
            | lat ->
                [
                  ( "latency_ns",
                    Obj
                      (List.map
                         (fun (op, h) ->
                           (op, of_summary (Obs.Histogram.summarize h)))
                         lat) );
                ]
          in
          write_file path (Obj fields);
          Printf.printf "wrote %s\n" path

let () =
  let open Cmdliner in
  let structure =
    Arg.(
      value
      & opt (enum (List.map (fun s -> (s, s)) Registry.structures)) "hash"
      & info [ "structure" ] ~doc:(String.concat " | " Registry.structures))
  in
  let scheme =
    Arg.(
      value
      & opt (enum (List.map (fun s -> (s, s)) Registry.schemes)) "VBR"
      & info [ "scheme" ] ~doc:(String.concat " | " Registry.schemes))
  in
  let threads =
    Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Worker domains.")
  in
  let range =
    Arg.(value & opt int 16384 & info [ "range" ] ~doc:"Key range.")
  in
  let profile =
    Arg.(
      value & opt string "balanced"
      & info [ "profile" ] ~doc:"read-heavy | balanced | update-heavy")
  in
  let duration =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~doc:"Seconds per run.")
  in
  let repeats = Arg.(value & opt int 3 & info [ "repeats" ] ~doc:"Repeats.") in
  let retire_threshold =
    Arg.(
      value
      & opt (some int) None
      & info [ "retire-threshold" ] ~doc:"Retired-list flush threshold.")
  in
  let epoch_freq =
    Arg.(
      value & opt int 32
      & info [ "epoch-freq" ] ~doc:"Allocations per epoch advance (EBR/HE/IBR).")
  in
  let capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "capacity" ] ~doc:"Arena capacity (default: auto-sized).")
  in
  let timed =
    Arg.(
      value & flag
      & info [ "timed" ]
          ~doc:
            "Time every operation into latency histograms and print \
             p50/p90/p99 per op kind (costs a little throughput).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PREFIX"
          ~doc:
            "Trace mode: run a fixed-operation budget (see $(b,--trace-ops)) \
             with a lifecycle trace attached and write $(docv).csv (for \
             vbr-trace) and $(docv).chrome.json (for chrome://tracing), \
             plus derived temporal metrics, instead of the fixed-time \
             measurement.")
  in
  let trace_ops =
    Arg.(
      value & opt int 40_000
      & info [ "trace-ops" ] ~doc:"Operation budget in --trace mode.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the measurement as a JSON object to $(docv).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "vbr-bench" ~doc:"One-shot throughput measurement")
      Term.(
        const run $ structure $ scheme $ threads $ range $ profile $ duration
        $ repeats $ retire_threshold $ epoch_freq $ capacity $ timed $ trace
        $ trace_ops $ json)
  in
  exit (Cmd.eval cmd)
